package setdb

// Chunked persistent shard states. The original copy-on-write design
// cloned a shard's whole key map on every write — O(keys/shard)
// amplification that becomes the dominant write cost once a shard holds
// ~10⁵ keys. Here each shard's key space is instead split into hash
// chunks; a shard snapshot holds an immutable table of per-chunk maps,
// and a write clones the table (one pointer per chunk) plus only the one
// chunk its key lives in, so the copied volume is O(chunks + keys/chunk)
// instead of O(keys/shard). Everything stays within the existing
// immutable-snapshot contract: chunk maps and the table are frozen once a
// shardState is published through the shard's atomic pointer, readers
// never lock, and an untouched chunk is carried into the successor
// snapshot by reference.
//
// The chunk count is adaptive per shard map: a table starts at one chunk
// and doubles (up to maxChunks) whenever its average occupancy crosses
// chunkGrowKeys, rehashing inside the private builder before the version
// is published. A fixed 256-chunk table is optimal at ~10⁵ keys/shard
// but makes every small shard pay a 2 KB table clone per write; with
// growth, a shard holding a handful of keys clones an 8–16 byte table
// instead, while hot shards converge to the same 256-chunk layout as
// before. Tables never shrink: occupancy is a high-water signal, and a
// shrink would make delete-heavy batches rehash on publish for no
// read-side benefit.

const (
	// maxChunks caps the number of chunks a shard map grows to. With the
	// 64-way shard split in front of it, a saturated database holds 16384
	// chunks per kind; at 10⁵ keys in one shard a chunk carries ~400
	// keys, so a write copies ~2 KB of table plus ~20 KB of chunk instead
	// of several MB of flat map.
	maxChunks = 256
	// chunkGrowKeys is the average keys-per-chunk threshold that triggers
	// table doubling. At 32 the rehash cost stays a small multiple of the
	// writes that caused it, and a shard crosses from 1 chunk at ~32 keys
	// to the full 256 around 8K keys.
	chunkGrowKeys = 32
	// perEntryCopyBytes estimates the bytes copied per entry carried into
	// a cloned chunk beyond the key bytes themselves: string header, the
	// entry value and amortized map-bucket overhead.
	perEntryCopyBytes = 48
)

// tableCopyBytes estimates the bytes copied when an n-chunk table is
// cloned (one map header per chunk).
func tableCopyBytes(n int) uint64 { return uint64(n) * 8 }

// EntryCopyBytes is the database's estimate of the bytes copied when one
// stored entry with a key of keyLen bytes is carried into a cloned map.
// It is exported so external write-amplification accounting (the
// bstbench writeamp experiment's flat-map baseline) uses the same
// formula the database's own Stats counters use.
func EntryCopyBytes(keyLen int) uint64 { return perEntryCopyBytes + uint64(keyLen) }

// keyHash is the FNV-1a hash both the shard split and the chunk split
// derive from: the shard index uses the hash modulo numShards, the chunk
// index an independent higher bit range.
func keyHash(key string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// shardIndex maps a key to its shard.
func shardIndex(key string) int { return int(keyHash(key) % numShards) }

// ShardOf returns the shard index key maps to. Exposed for experiments
// and workload planning that need shard-local key sets (the bstbench
// writeamp sweep stresses one shard at a chosen occupancy); the mapping
// is stable for a given key, but the shard count is an internal constant.
func ShardOf(key string) int { return shardIndex(key) }

// chunkIndexIn maps a key hash to its chunk within an n-chunk table
// (n must be a power of two). FNV-1a's high bits avalanche poorly for
// short keys — and the shard split has already conditioned the low bits
// — so the hash is remixed with a 64-bit finalizer before slicing; a raw
// (h>>32)&(n-1) slice leaves small tables badly unbalanced (a measured
// 46/4 split over 50 shard-local keys at n=2). The remix is a fixed
// function of the key hash, so every table size still slices the same
// bit string and growth only splits chunks, never reshuffles unrelated
// keys between surviving ones.
func chunkIndexIn(h uint64, n int) int {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int((h >> 32) & uint64(n-1))
}

// chunkedMap is a persistent string-keyed map split into hash chunks: an
// immutable table of small immutable maps whose length is a power of two
// in [1, maxChunks], grown with occupancy. The zero value is the empty
// map. Readers use get/len/rangeAll with no synchronization; successor
// versions are produced by with/without (single write) or a chunkBuilder
// (group commit), which clone the table and only the touched chunks.
type chunkedMap[V any] struct {
	chunks []map[string]V // nil for the empty map; immutable once published
	count  int
}

// len returns the number of stored keys.
func (c chunkedMap[V]) len() int { return c.count }

// numChunks returns the current table size (0 for the empty map).
func (c chunkedMap[V]) numChunks() int { return len(c.chunks) }

// get looks key up using its precomputed hash.
func (c chunkedMap[V]) get(h uint64, key string) (V, bool) {
	if len(c.chunks) == 0 {
		var zero V
		return zero, false
	}
	v, ok := c.chunks[chunkIndexIn(h, len(c.chunks))][key]
	return v, ok
}

// rangeAll calls fn for every stored key/value, in unspecified order.
func (c chunkedMap[V]) rangeAll(fn func(key string, v V)) {
	for i := range c.chunks {
		for k, v := range c.chunks[i] {
			fn(k, v)
		}
	}
}

// with returns a successor version with key bound to v, plus the
// estimated bytes copied building it.
func (c chunkedMap[V]) with(h uint64, key string, v V) (chunkedMap[V], uint64) {
	b := newChunkBuilder(c)
	b.set(h, key, v)
	return b.freeze(), b.bytes
}

// without returns a successor version with key removed, plus the
// estimated bytes copied. When the key is absent it returns the receiver
// unchanged with zero copies — a delete-miss must not pay for (or
// publish) a clone of anything. The table keeps its size: chunk counts
// never shrink.
func (c chunkedMap[V]) without(h uint64, key string) (chunkedMap[V], uint64, bool) {
	n := len(c.chunks)
	if n == 0 {
		return c, 0, false
	}
	ci := chunkIndexIn(h, n)
	old := c.chunks[ci]
	if _, ok := old[key]; !ok {
		return c, 0, false
	}
	next := make([]map[string]V, n)
	copy(next, c.chunks)
	bytes := tableCopyBytes(n)
	var m map[string]V
	if len(old) > 1 {
		m = make(map[string]V, len(old)-1)
		for k, v := range old {
			if k != key {
				m[k] = v
				bytes += EntryCopyBytes(len(k))
			}
		}
	}
	next[ci] = m
	return chunkedMap[V]{chunks: next, count: c.count - 1}, bytes, true
}

// chunkBuilder accumulates any number of writes into one successor
// chunkedMap version: the chunk table is cloned once up front, each
// touched chunk is cloned at most once (on first touch) and then mutated
// privately, and freeze publishes the result. It is the group-commit
// engine behind ApplyBatch — N writes landing in the same chunk pay for
// one clone, not N. Inserts that push the average occupancy past
// chunkGrowKeys double the private table (rehashing every entry, with the
// copies accounted) before the version is published.
type chunkBuilder[V any] struct {
	chunks []map[string]V
	dirty  []bool // chunks already cloned (safe to mutate)
	count  int
	bytes  uint64 // estimated bytes copied so far
}

// newChunkBuilder starts a builder from an existing version, paying the
// table clone immediately. An empty map starts at the minimum one-chunk
// table.
func newChunkBuilder[V any](from chunkedMap[V]) *chunkBuilder[V] {
	n := len(from.chunks)
	if n == 0 {
		n = 1
	}
	b := &chunkBuilder[V]{
		chunks: make([]map[string]V, n),
		dirty:  make([]bool, n),
		count:  from.count,
		bytes:  tableCopyBytes(n),
	}
	copy(b.chunks, from.chunks)
	return b
}

// get looks key up in the working state (later writes observe earlier
// ones, exactly as sequential single writes would).
func (b *chunkBuilder[V]) get(h uint64, key string) (V, bool) {
	v, ok := b.chunks[chunkIndexIn(h, len(b.chunks))][key]
	return v, ok
}

// set binds key to v, cloning the target chunk on first touch and
// growing the table first when the insert would cross the occupancy
// threshold.
func (b *chunkBuilder[V]) set(h uint64, key string, v V) {
	n := len(b.chunks)
	ci := chunkIndexIn(h, n)
	_, had := b.chunks[ci][key]
	if !had && n < maxChunks && b.count+1 > n*chunkGrowKeys {
		b.grow()
		ci = chunkIndexIn(h, len(b.chunks))
	}
	if !b.dirty[ci] {
		old := b.chunks[ci]
		m := make(map[string]V, len(old)+1)
		for k, val := range old {
			m[k] = val
			b.bytes += EntryCopyBytes(len(k))
		}
		b.chunks[ci] = m
		b.dirty[ci] = true
	}
	if b.chunks[ci] == nil {
		// A dirty chunk can be nil after delete emptied it.
		b.chunks[ci] = make(map[string]V, 1)
	}
	if !had {
		b.count++
	}
	b.chunks[ci][key] = v
}

// delete removes key from the working state, cloning the target chunk on
// first touch; it reports whether the key was present. The table keeps
// its size.
func (b *chunkBuilder[V]) delete(h uint64, key string) bool {
	ci := chunkIndexIn(h, len(b.chunks))
	old := b.chunks[ci]
	if _, had := old[key]; !had {
		return false
	}
	if !b.dirty[ci] {
		var m map[string]V
		if len(old) > 1 {
			m = make(map[string]V, len(old)-1)
			for k, val := range old {
				if k != key {
					m[k] = val
					b.bytes += EntryCopyBytes(len(k))
				}
			}
		}
		b.chunks[ci] = m
		b.dirty[ci] = true
	} else {
		delete(b.chunks[ci], key)
	}
	b.count--
	return true
}

// grow doubles the table until the pending insert fits under the
// occupancy threshold (or maxChunks is reached), rehashing every stored
// entry into the new layout. The rehash happens entirely inside the
// builder's private state, so published snapshots never observe a
// half-grown table; every moved entry and the new table are charged to
// the builder's copy accounting.
func (b *chunkBuilder[V]) grow() {
	target := len(b.chunks) * 2
	for target < maxChunks && b.count+1 > target*chunkGrowKeys {
		target *= 2
	}
	next := make([]map[string]V, target)
	dirty := make([]bool, target)
	for _, m := range b.chunks {
		for k, v := range m {
			ci := chunkIndexIn(keyHash(k), target)
			nm := next[ci]
			if nm == nil {
				nm = make(map[string]V, chunkGrowKeys)
				next[ci] = nm
				dirty[ci] = true
			}
			nm[k] = v
			b.bytes += EntryCopyBytes(len(k))
		}
	}
	b.bytes += tableCopyBytes(target)
	b.chunks, b.dirty = next, dirty
}

// freeze returns the built version. The builder must not be used after.
func (b *chunkBuilder[V]) freeze() chunkedMap[V] {
	return chunkedMap[V]{chunks: b.chunks, count: b.count}
}
