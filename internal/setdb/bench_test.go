package setdb

import (
	"strconv"
	"testing"

	"repro/internal/core"
)

// populateOneShard fills shard 0 with nKeys tiny sets through the
// group-commit path and returns the keys.
func populateOneShard(tb testing.TB, db *DB, nKeys int) []string {
	tb.Helper()
	keys := make([]string, 0, nKeys)
	batch := make([]Write, 0, 1024)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := db.ApplyBatch(batch); err != nil {
			tb.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 0; len(keys) < nKeys; i++ {
		k := "k" + strconv.Itoa(i)
		if shardIndex(k) != 0 {
			continue
		}
		keys = append(keys, k)
		batch = append(batch, Write{Key: k, IDs: []uint64{uint64(i) % 4096}})
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	return keys
}

// BenchmarkAddDynamicLargeShard measures the per-write cost of a dynamic
// add against a shard already holding many keys — the regime where the
// old flat-map copy-on-write design paid an O(keys/shard) clone per
// write and the chunked design pays O(keys/chunk). Run with -benchmem:
// the B/op figure is the live write amplification.
func BenchmarkAddDynamicLargeShard(b *testing.B) {
	db, err := Open(smallOptions())
	if err != nil {
		b.Fatal(err)
	}
	const nKeys = 20_000
	populateOneShard(b, db, nKeys)
	// The measured writes target dynamic keys in the same loaded shard;
	// creating them first keeps the timed loop pure update.
	dyn := make([]string, 0, 64)
	for i := 0; len(dyn) < cap(dyn); i++ {
		k := "dyn" + strconv.Itoa(i)
		if shardIndex(k) != 0 {
			continue
		}
		dyn = append(dyn, k)
		if err := db.AddDynamic(k, uint64(i)%4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AddDynamic(dyn[i%len(dyn)], uint64(i)%4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleManySteadyState measures the batched sampling hot path.
// With the scratch-threaded descent the per-draw allocation count is
// zero; the small fixed allocs/op are the batch's setup (worker slots,
// rng, output buffers). Run with -benchmem to see it.
func BenchmarkSampleManySteadyState(b *testing.B) {
	opts, err := PlanOptions(0.9, 2000, 1_000_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	opts.Seed = 7
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]uint64, 2000)
	for i := range ids {
		ids[i] = uint64(i) * 499
	}
	if err := db.Add("bench", ids...); err != nil {
		b.Fatal(err)
	}
	const draws = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, err := db.SampleMany("bench", draws)
		if err != nil {
			b.Fatal(err)
		}
		if len(xs) == 0 {
			b.Fatal("no samples drawn")
		}
	}
}

// TestSampleManyAllocsPerDraw is the allocation regression gate for the
// steady-state sampling path: the per-draw descent is allocation-free
// (see core.Tree.SampleScratch), so a large batch's total allocations
// are a small per-call constant — amortized (far) below one allocation
// per draw. The exact-zero guarantee of the descent itself is asserted
// in internal/core's TestSampleScratchSteadyStateZeroAllocs.
func TestSampleManyAllocsPerDraw(t *testing.T) {
	opts, err := PlanOptions(0.9, 1000, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 7
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i) * 97
	}
	if err := db.Add("bench", ids...); err != nil {
		t.Fatal(err)
	}
	const draws = 4096
	if _, err := db.SampleMany("bench", draws); err != nil { // warm pools
		t.Fatal(err)
	}
	var ops core.Ops
	allocs := testing.AllocsPerRun(5, func() {
		xs, err := db.SampleManyWorkers("bench", draws, 1, &ops)
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) == 0 {
			t.Fatal("no samples drawn")
		}
	})
	if perDraw := allocs / draws; perDraw > 0.05 {
		t.Fatalf("steady-state SampleMany allocates %.3f/draw (%v per %d-draw batch), want amortized ~0",
			perDraw, allocs, draws)
	}
}
