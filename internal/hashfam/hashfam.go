// Package hashfam implements the families of Bloom-filter hash functions
// the paper evaluates (§7.1): the "Simple" affine family (a·x+b) mod m,
// which is weakly invertible; MurmurHash3 (implemented from scratch, x64
// 128-bit variant); and MD5 (via crypto/md5, kept as an opt-in
// compatibility kind). Two extra hardware-friendly families are provided:
// KindFast (the default — one 128-bit multiply-fold mix per key, see
// fast.go) and FNV-1a. Families implementing BatchFamily additionally
// expose a batched PositionsMany path that amortizes per-key setup across
// bulk probe loops.
//
// A Family maps a namespace element x (a uint64) to k positions in
// [0, m). Families are deterministic given (kind, m, k, seed), so that a
// BloomSampleTree and the query Bloom filters it serves can be built with
// identical hash functions, as the paper requires (§5.1).
package hashfam

import (
	"fmt"
)

// Kind identifies a hash-function family.
type Kind string

// Supported family kinds.
const (
	KindFast    Kind = "fast"    // 128-bit multiply-fold mix + double hashing (default)
	KindSimple  Kind = "simple"  // (a·x + b) mod m, weakly invertible
	KindMurmur3 Kind = "murmur3" // MurmurHash3 x64_128 + double hashing
	KindMD5     Kind = "md5"     // crypto/md5 + double hashing (compatibility only)
	KindFNV     Kind = "fnv"     // FNV-1a 64 + double hashing
)

// DefaultKind is the family every layer that picks a default uses: the
// fast multiply-fold family. KindMD5 — the paper's deliberately expensive
// comparison point — and the others remain constructible for
// compatibility (persisted databases embed their kind) and for the
// Figure 7 family sweep, but nothing defaults to them.
const DefaultKind = KindFast

// Kinds lists every supported family kind.
func Kinds() []Kind { return []Kind{KindFast, KindSimple, KindMurmur3, KindMD5, KindFNV} }

// Family is a set of k hash functions h_1..h_k, each mapping namespace
// elements to bit positions in [0, m).
type Family interface {
	// Kind returns the family identifier.
	Kind() Kind
	// K returns the number of hash functions.
	K() int
	// M returns the range of each function (the Bloom filter size in bits).
	M() uint64
	// Seed returns the seed the family was derived from.
	Seed() uint64
	// Positions appends the k positions h_1(x)..h_k(x) to out and returns
	// the extended slice. Positions(x, nil) allocates.
	Positions(x uint64, out []uint64) []uint64
}

// BatchFamily is implemented by families with a batched positions path.
// PositionsMany is semantically equivalent to calling Positions on each
// element of xs in order, but amortizes per-key setup (interface
// dispatch, digest buffers) across the batch. Use the package-level
// PositionsMany helper to get the fallback loop for families without a
// native implementation.
type BatchFamily interface {
	Family
	// PositionsMany appends, for each x in xs in order, the k positions
	// h_1(x)..h_k(x) to out and returns the extended slice (k·len(xs)
	// appended positions in total).
	PositionsMany(xs []uint64, out []uint64) []uint64
}

// PositionsMany hashes every key of xs with f, appending k positions per
// key to out, using the family's native batched path when it has one.
func PositionsMany(f Family, xs []uint64, out []uint64) []uint64 {
	if bf, ok := f.(BatchFamily); ok {
		return bf.PositionsMany(xs, out)
	}
	for _, x := range xs {
		out = f.Positions(x, out)
	}
	return out
}

// Invertible is implemented by families whose functions are weakly
// invertible in the paper's sense (§4): given a position p and an index i,
// the set {y : h_i(y) = p} can be enumerated efficiently.
type Invertible interface {
	Family
	// Preimages appends, in ascending order, every y in [lo, hi) with
	// h_i(y) = pos, and returns the extended slice. i is zero-based and
	// must be < K().
	Preimages(i int, pos uint64, lo, hi uint64, out []uint64) []uint64
}

// New constructs a family of k functions with range m, deterministically
// derived from seed. It returns an error for unknown kinds or degenerate
// parameters.
func New(kind Kind, m uint64, k int, seed uint64) (Family, error) {
	if m < 2 {
		return nil, fmt.Errorf("hashfam: m = %d, need m >= 2", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("hashfam: k = %d, need k >= 1", k)
	}
	switch kind {
	case KindFast:
		return newFast(m, k, seed), nil
	case KindSimple:
		return newSimple(m, k, seed), nil
	case KindMurmur3:
		return newMurmur3(m, k, seed), nil
	case KindMD5:
		return newMD5(m, k, seed), nil
	case KindFNV:
		return newFNV(m, k, seed), nil
	default:
		return nil, fmt.Errorf("hashfam: unknown kind %q", kind)
	}
}

// MustNew is New but panics on error; for use with known-good parameters.
func MustNew(kind Kind, m uint64, k int, seed uint64) Family {
	f, err := New(kind, m, k, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// splitmix64 is a fast, well-distributed PRNG step used for deterministic
// parameter derivation from seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// doublePositions fills k positions using Kirsch–Mitzenmacher double
// hashing: pos_i = (h1 + i·h2) mod m, with h2 forced odd so that the probe
// sequence cycles through many residues even for composite m.
func doublePositions(h1, h2, m uint64, k int, out []uint64) []uint64 {
	h2 |= 1
	h1 %= m
	h2 %= m
	if h2 == 0 {
		h2 = 1
	}
	pos := h1
	for i := 0; i < k; i++ {
		out = append(out, pos)
		pos += h2
		if pos >= m {
			pos -= m
		}
	}
	return out
}
