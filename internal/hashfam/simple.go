package hashfam

// simpleFamily is the paper's "Simple" family: h_i(x) = (a_i·x + b_i) mod c_i
// with a_i coprime to c_i. It is weakly invertible (§4): given a position
// p, the preimages under h_i form the arithmetic progression
// x ≡ a_i⁻¹·(p − b_i) (mod c_i), so enumerating {y ∈ [lo,hi) : h_i(y)=p}
// costs O((hi−lo)/c_i) — this is the inversion HashInvert exploits.
//
// Each function uses its own modulus c_i: the k largest distinct primes
// not exceeding the filter size m. With a single shared modulus, any two
// elements congruent mod m would collide on every function at once, giving
// the filter an irreducible false-positive floor of about n/m — orders of
// magnitude above the (1−e^{−kn/m})^k design rate. Distinct prime moduli
// push the simultaneous-collision condition to x ≡ y mod (c_1·…·c_k),
// which never happens within a realistic namespace. The few bit positions
// in [c_i, m) are simply never used by function i; for primes within a few
// hundred of m the capacity loss is negligible.
type simpleFamily struct {
	m    uint64
	k    int
	seed uint64
	c    []uint64 // per-function prime moduli, <= m
	a    []uint64 // multipliers in [1, c_i), automatically coprime
	ainv []uint64 // modular inverses of a mod c_i
	b    []uint64 // offsets in [0, c_i)
}

func newSimple(m uint64, k int, seed uint64) *simpleFamily {
	f := &simpleFamily{m: m, k: k, seed: seed}
	f.c = primesBelow(m, k)
	s := splitmix64(seed ^ 0x5157_11a5_0b10_0f17)
	for i := 0; i < k; i++ {
		ci := f.c[i]
		s = splitmix64(s)
		a := s%(ci-1) + 1 // in [1, c_i); c_i prime, so gcd(a, c_i) = 1
		inv, ok := modInverse(a, ci)
		if !ok {
			panic("hashfam: prime modulus produced non-invertible multiplier") // unreachable
		}
		s = splitmix64(s)
		b := s % ci
		f.a = append(f.a, a)
		f.ainv = append(f.ainv, inv)
		f.b = append(f.b, b)
	}
	return f
}

// primesBelow returns the k largest distinct primes <= n, falling back to
// small-m degenerate cases by reusing the largest prime(s) available above
// 2 (for m < 5 a Bloom filter is degenerate anyway).
func primesBelow(n uint64, k int) []uint64 {
	out := make([]uint64, 0, k)
	for p := n; p >= 2 && len(out) < k; p-- {
		if isPrime(p) {
			out = append(out, p)
		}
	}
	for len(out) < k { // tiny m: reuse the smallest found (or 2)
		if len(out) == 0 {
			out = append(out, 2)
		} else {
			out = append(out, out[len(out)-1])
		}
	}
	return out
}

// isPrime is deterministic trial division; moduli are filter sizes
// (< 2^32 in practice), so this is at most ~65k iterations, done once per
// family construction.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func (f *simpleFamily) Kind() Kind   { return KindSimple }
func (f *simpleFamily) K() int       { return f.k }
func (f *simpleFamily) M() uint64    { return f.m }
func (f *simpleFamily) Seed() uint64 { return f.seed }

func (f *simpleFamily) Positions(x uint64, out []uint64) []uint64 {
	for i := 0; i < f.k; i++ {
		p := mulMod(f.a[i], x, f.c[i]) + f.b[i]
		if p >= f.c[i] {
			p -= f.c[i]
		}
		out = append(out, p)
	}
	return out
}

// Preimages appends all y in [lo, hi) with h_i(y) = pos, in ascending
// order. Because a_i is invertible mod c_i, the solutions are exactly
// x0 + t·c_i for integer t, where x0 = a_i⁻¹·(pos − b_i) mod c_i.
// Positions >= c_i have no preimages under function i.
func (f *simpleFamily) Preimages(i int, pos uint64, lo, hi uint64, out []uint64) []uint64 {
	if i < 0 || i >= f.k || lo >= hi {
		return out
	}
	ci := f.c[i]
	if pos >= ci {
		return out
	}
	diff := pos + ci - f.b[i] // pos - b_i, kept non-negative
	if diff >= ci {
		diff -= ci
	}
	x0 := mulMod(f.ainv[i], diff, ci)
	// First solution >= lo.
	var first uint64
	if x0 >= lo {
		first = x0
	} else {
		t := (lo - x0 + ci - 1) / ci
		first = x0 + t*ci
	}
	for y := first; y < hi; y += ci {
		out = append(out, y)
	}
	return out
}

var _ Invertible = (*simpleFamily)(nil)
