package hashfam

// fnvFamily derives k positions from two FNV-1a 64-bit hashes of the
// element (the second over a seed-perturbed input) combined with double
// hashing. It is the fastest family here and is not part of the paper's
// evaluation; it is provided as an extra option for downstream users.
type fnvFamily struct {
	m    uint64
	k    int
	seed uint64
}

func newFNV(m uint64, k int, seed uint64) *fnvFamily {
	return &fnvFamily{m: m, k: k, seed: seed}
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnv1a64 hashes the 8 bytes of x (little-endian) with FNV-1a.
func fnv1a64(x uint64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func (f *fnvFamily) Kind() Kind   { return KindFNV }
func (f *fnvFamily) K() int       { return f.k }
func (f *fnvFamily) M() uint64    { return f.m }
func (f *fnvFamily) Seed() uint64 { return f.seed }

func (f *fnvFamily) Positions(x uint64, out []uint64) []uint64 {
	h1 := fnv1a64(x ^ f.seed)
	h2 := fnv1a64(x ^ splitmix64(f.seed))
	return doublePositions(h1, h2, f.m, f.k, out)
}

// PositionsMany hashes every key of xs in one call, hoisting the
// seed-perturbation splitmix64 out of the per-key loop.
func (f *fnvFamily) PositionsMany(xs []uint64, out []uint64) []uint64 {
	seed2 := splitmix64(f.seed)
	for _, x := range xs {
		h1 := fnv1a64(x ^ f.seed)
		h2 := fnv1a64(x ^ seed2)
		out = doublePositions(h1, h2, f.m, f.k, out)
	}
	return out
}

var _ BatchFamily = (*fnvFamily)(nil)
