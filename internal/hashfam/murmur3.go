package hashfam

import (
	"encoding/binary"
	"math/bits"
)

// Sum128 computes MurmurHash3 x64_128 of data with the given seed,
// returning the two 64-bit halves of the digest. The implementation follows
// Austin Appleby's reference (MurmurHash3.cpp, public domain) and is
// verified against its published test vectors.
func Sum128(data []byte, seed uint32) (uint64, uint64) {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h1 := uint64(seed)
	h2 := uint64(seed)
	n := len(data)

	// Body: 16-byte blocks.
	nblocks := n / 16
	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// fmix64 is MurmurHash3's 64-bit finalizer.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// murmur3Family derives k Bloom-filter positions from the two 64-bit halves
// of the MurmurHash3 x64_128 digest of the element's 8-byte little-endian
// encoding, combined with double hashing.
type murmur3Family struct {
	m    uint64
	k    int
	seed uint64
}

func newMurmur3(m uint64, k int, seed uint64) *murmur3Family {
	return &murmur3Family{m: m, k: k, seed: seed}
}

func (f *murmur3Family) Kind() Kind   { return KindMurmur3 }
func (f *murmur3Family) K() int       { return f.k }
func (f *murmur3Family) M() uint64    { return f.m }
func (f *murmur3Family) Seed() uint64 { return f.seed }

func (f *murmur3Family) Positions(x uint64, out []uint64) []uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	h1, h2 := Sum128(buf[:], uint32(f.seed))
	return doublePositions(h1, h2, f.m, f.k, out)
}

// PositionsMany hashes every key of xs in one call, reusing one digest
// buffer across the batch.
func (f *murmur3Family) PositionsMany(xs []uint64, out []uint64) []uint64 {
	var buf [8]byte
	seed := uint32(f.seed)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], x)
		h1, h2 := Sum128(buf[:], seed)
		out = doublePositions(h1, h2, f.m, f.k, out)
	}
	return out
}

var _ BatchFamily = (*murmur3Family)(nil)
