package hashfam

import (
	"testing"

	"repro/internal/stats"
)

// Reference vectors for Mix128, pinned so the fast family's on-disk
// compatibility (filters persist their kind and positions) can never
// drift silently across refactors.
func TestMix128Vectors(t *testing.T) {
	cases := []struct {
		x, seed uint64
		h1, h2  uint64
	}{
		{0x0, 0x0, 0x1ff5c2923a788d2c, 0x2afa3043c0fbb4d2},
		{0x1, 0x0, 0x7e0e2ff6b13a291e, 0x370a4a0000d542d2},
		{0x0, 0x1, 0x38f94c439ac36242, 0x5dbbe64fa834b821},
		{0xdeadbeef, 0x2a, 0x8973390ca9fd116, 0x53516b3f0f7be1da},
		{0x8000000000000000, 0xffffffffffffffff, 0xafb2b128f8c19328, 0xbb7d68811b640a69},
		{0x75bcd15, 0x3ade68b1, 0xdae73ba4834397ab, 0x3961317045dcbca8},
	}
	for _, c := range cases {
		h1, h2 := Mix128(c.x, c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Fatalf("Mix128(%#x, %#x) = %#x,%#x want %#x,%#x", c.x, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestDefaultKindIsFast(t *testing.T) {
	if DefaultKind != KindFast {
		t.Fatalf("DefaultKind = %s", DefaultKind)
	}
	f, err := New(DefaultKind, 1000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(BatchFamily); !ok {
		t.Fatal("default family does not implement BatchFamily")
	}
}

// TestPositionsManyMatchesPositions pins the batch contract for every
// family: PositionsMany (native or via the package fallback) must produce
// exactly the concatenation of per-key Positions calls.
func TestPositionsManyMatchesPositions(t *testing.T) {
	for _, kind := range Kinds() {
		f := MustNew(kind, 60870, 5, 13)
		xs := make([]uint64, 97)
		for i := range xs {
			xs[i] = uint64(i * 2654435761)
		}
		batch := PositionsMany(f, xs, nil)
		if len(batch) != len(xs)*5 {
			t.Fatalf("%s: batch yielded %d positions, want %d", kind, len(batch), len(xs)*5)
		}
		for i, x := range xs {
			single := f.Positions(x, nil)
			for j, p := range single {
				if batch[i*5+j] != p {
					t.Fatalf("%s: PositionsMany[%d][%d] = %d, Positions = %d", kind, i, j, batch[i*5+j], p)
				}
			}
		}
		// Append semantics: existing prefix preserved.
		pre := PositionsMany(f, xs[:2], []uint64{42})
		if pre[0] != 42 || len(pre) != 1+2*5 {
			t.Fatalf("%s: append semantics broken: %v", kind, pre)
		}
	}
}

// TestFastIndexSplitUniform runs the paper-style chi-squared uniformity
// test (§7.2) over the fast family's k-index split: each of the k derived
// positions, taken separately over many keys, must be uniform over the m
// cells. This is the property enhanced double hashing is supposed to
// deliver from one 128-bit mix — a correlated (h1,h2) pair would skew the
// later indices even with a uniform h1.
func TestFastIndexSplitUniform(t *testing.T) {
	const (
		m = 64
		k = 4
	)
	f := MustNew(KindFast, m, k, 977)
	samples := stats.RecommendedRounds(m)
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, m)
	}
	pos := make([]uint64, 0, k)
	for x := 0; x < samples; x++ {
		pos = f.Positions(uint64(x)*0x9e3779b97f4a7c15+7, pos[:0])
		for i, p := range pos {
			counts[i][p]++
		}
	}
	for i := range counts {
		res, err := stats.ChiSquaredUniform(counts[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.01) {
			t.Fatalf("index %d of the k-split rejects uniformity: %v", i, res)
		}
	}
}

// The two mix halves must be jointly well distributed: h2 conditioned on
// a fixed low bit of h1 should still be uniform (a pure affine second
// fold would fail this under double hashing's odd-forcing).
func TestMix128HalvesIndependent(t *testing.T) {
	const cells = 32
	var counts [2][cells]int
	for x := uint64(0); x < 130*cells*8; x++ {
		h1, h2 := Mix128(x, 3)
		counts[h1&1][(h2>>32)%cells]++
	}
	for b := range counts {
		res, err := stats.ChiSquaredUniform(counts[b][:])
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.01) {
			t.Fatalf("h2 | h1-bit=%d rejects uniformity: %v", b, res)
		}
	}
}

func BenchmarkPositionsMany(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			f := MustNew(kind, 60870, 3, 1)
			xs := make([]uint64, 64)
			for i := range xs {
				xs[i] = uint64(i)
			}
			out := make([]uint64, 0, len(xs)*3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = PositionsMany(f, xs, out[:0])
			}
			_ = out
		})
	}
}
