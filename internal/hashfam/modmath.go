package hashfam

import "math/bits"

// mulMod returns (a * b) mod m using 128-bit intermediate arithmetic, so it
// is exact for any uint64 operands. bits.Rem64 requires hi < m, which holds
// because hi <= (m-1)^2 / 2^64 < m after reducing the operands mod m.
func mulMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	hi, lo := bits.Mul64(a, b)
	if hi == 0 {
		return lo % m
	}
	return bits.Rem64(hi, lo, m)
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns x with (a*x) mod m == 1 and whether it exists
// (i.e. gcd(a, m) == 1). It uses the extended Euclidean algorithm on
// signed 128-bit-safe arithmetic via int64 coefficient tracking; a and m
// must be < 2^63 for the coefficient arithmetic to stay in range, which
// holds for all Bloom-filter sizes used here.
func modInverse(a, m uint64) (uint64, bool) {
	if m == 0 || gcd(a%m, m) != 1 {
		return 0, false
	}
	// Extended Euclid with coefficients on a only.
	var t, newT int64 = 0, 1
	var r, newR = int64(m), int64(a % m)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(m)
	}
	return uint64(t), true
}
