package hashfam

import "math/bits"

// The fast family: one 128-bit multiply-fold mix per key, split into k
// indices via enhanced double hashing. This is the hardware-friendly
// default the hot probe path runs on — every membership probe during
// sampling descent, reconstruction and intersection estimation bottoms
// out in Positions, so its cost multiplies through the whole system.
//
// The mix is wyhash/xxh3-style: the key's 8-byte little-endian encoding
// is folded through two 64×64→128-bit multiplies (bits.Mul64 compiles to
// a single MUL on amd64/arm64), XOR-folding each product's halves. Unlike
// the MurmurHash3 family it never materializes a byte buffer and has no
// per-call tail/finalizer branching: a fixed-width key takes the fixed
// fast path unconditionally. Unlike MD5 (kept as an opt-in compatibility
// kind for the paper's Figure 7 comparison) it is a few nanoseconds, not
// a cryptographic digest.

// Multiply-fold constants, from wyhash's default secret (64-bit primes
// with balanced bit patterns).
const (
	fastP0 = 0xa0761d6478bd642f
	fastP1 = 0xe7037ed1a0b428db
	fastP2 = 0x8ebc6af09c88c6e3
	fastP3 = 0x589965cc75374cc3
)

// Mix128 mixes a 64-bit key and seed into a 128-bit result via two
// multiply-folds. The second fold consumes the first's output, so the two
// halves are not independent affine images of x — exactly what enhanced
// double hashing needs from its (h1, h2) pair. Exported so reference
// vectors and the uniformity tests can pin the mapping.
func Mix128(x, seed uint64) (h1, h2 uint64) {
	hi, lo := bits.Mul64(x^fastP1, seed^fastP0)
	h1 = hi ^ lo
	hi, lo = bits.Mul64(h1^fastP2, x^seed^fastP3)
	h2 = hi ^ lo
	return h1, h2
}

// fastFamily derives k Bloom-filter positions from one Mix128 call per
// key via double hashing.
type fastFamily struct {
	m    uint64
	k    int
	seed uint64
}

func newFast(m uint64, k int, seed uint64) *fastFamily {
	return &fastFamily{m: m, k: k, seed: seed}
}

func (f *fastFamily) Kind() Kind   { return KindFast }
func (f *fastFamily) K() int       { return f.k }
func (f *fastFamily) M() uint64    { return f.m }
func (f *fastFamily) Seed() uint64 { return f.seed }

func (f *fastFamily) Positions(x uint64, out []uint64) []uint64 {
	h1, h2 := Mix128(x, f.seed)
	return doublePositions(h1, h2, f.m, f.k, out)
}

// PositionsMany hashes every key of xs in one call, appending k positions
// per key. The per-key cost is one inlined Mix128 plus the double-hashing
// split — no interface dispatch, no buffer setup — so bulk probe loops
// (leaf scans, batch ingest) amortize all per-call overhead across the
// batch.
func (f *fastFamily) PositionsMany(xs []uint64, out []uint64) []uint64 {
	m, k, seed := f.m, f.k, f.seed
	for _, x := range xs {
		h1, h2 := Mix128(x, seed)
		out = doublePositions(h1, h2, m, k, out)
	}
	return out
}

var _ BatchFamily = (*fastFamily)(nil)
