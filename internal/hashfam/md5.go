package hashfam

import (
	"crypto/md5"
	"encoding/binary"
)

// md5Family derives k positions from the MD5 digest of the element's
// 8-byte little-endian encoding concatenated with the seed, using double
// hashing over the first two 64-bit words of the digest. MD5 is the
// deliberately expensive family in the paper's Figure 7 comparison; its
// cryptographic weakness is irrelevant here — it is used purely as a
// (slow, well-mixed) hash. It is an opt-in compatibility kind: nothing
// defaults to it (see DefaultKind), it exists for the family sweep and
// for reading databases persisted with it.
type md5Family struct {
	m    uint64
	k    int
	seed uint64
}

func newMD5(m uint64, k int, seed uint64) *md5Family {
	return &md5Family{m: m, k: k, seed: seed}
}

func (f *md5Family) Kind() Kind   { return KindMD5 }
func (f *md5Family) K() int       { return f.k }
func (f *md5Family) M() uint64    { return f.m }
func (f *md5Family) Seed() uint64 { return f.seed }

func (f *md5Family) Positions(x uint64, out []uint64) []uint64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], x)
	binary.LittleEndian.PutUint64(buf[8:], f.seed)
	sum := md5.Sum(buf[:])
	h1 := binary.LittleEndian.Uint64(sum[:8])
	h2 := binary.LittleEndian.Uint64(sum[8:])
	return doublePositions(h1, h2, f.m, f.k, out)
}
