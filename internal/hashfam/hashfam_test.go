package hashfam

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindsConstructAll(t *testing.T) {
	for _, kind := range Kinds() {
		f, err := New(kind, 1000, 3, 42)
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if f.Kind() != kind {
			t.Fatalf("Kind = %s, want %s", f.Kind(), kind)
		}
		if f.K() != 3 || f.M() != 1000 || f.Seed() != 42 {
			t.Fatalf("%s: params not preserved", kind)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("nope", 100, 3, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(KindSimple, 1, 3, 0); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := New(KindSimple, 100, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad kind did not panic")
		}
	}()
	MustNew("nope", 100, 3, 0)
}

func TestPositionsInRangeAndDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		for _, m := range []uint64{2, 7, 64, 1000, 28465} {
			f := MustNew(kind, m, 4, 7)
			g := MustNew(kind, m, 4, 7)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200; i++ {
				x := rng.Uint64() % (1 << 40)
				p1 := f.Positions(x, nil)
				p2 := g.Positions(x, nil)
				if len(p1) != 4 {
					t.Fatalf("%s m=%d: got %d positions", kind, m, len(p1))
				}
				for j := range p1 {
					if p1[j] >= m {
						t.Fatalf("%s m=%d: position %d out of range", kind, m, p1[j])
					}
					if p1[j] != p2[j] {
						t.Fatalf("%s m=%d: not deterministic", kind, m)
					}
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	for _, kind := range Kinds() {
		a := MustNew(kind, 100000, 3, 1)
		b := MustNew(kind, 100000, 3, 2)
		same := 0
		for x := uint64(0); x < 100; x++ {
			pa := a.Positions(x, nil)
			pb := b.Positions(x, nil)
			if pa[0] == pb[0] && pa[1] == pb[1] && pa[2] == pb[2] {
				same++
			}
		}
		if same > 5 {
			t.Fatalf("%s: %d/100 identical position triples across seeds", kind, same)
		}
	}
}

func TestPositionsAppend(t *testing.T) {
	f := MustNew(KindSimple, 100, 2, 0)
	base := []uint64{99}
	out := f.Positions(5, base)
	if len(out) != 3 || out[0] != 99 {
		t.Fatalf("append semantics broken: %v", out)
	}
}

// Positions should be roughly uniform: a chi-squared-ish sanity check that
// no bucket of m/10 positions receives a wildly disproportionate share.
func TestPositionsRoughlyUniform(t *testing.T) {
	const m = 1000
	const samples = 60000
	for _, kind := range Kinds() {
		f := MustNew(kind, m, 1, 3)
		counts := make([]int, 10)
		for x := uint64(0); x < samples; x++ {
			p := f.Positions(x, nil)
			counts[p[0]/(m/10)]++
		}
		want := samples / 10
		for b, c := range counts {
			if c < want/2 || c > want*2 {
				t.Fatalf("%s: bucket %d has %d hits, want ~%d", kind, b, c, want)
			}
		}
	}
}

func TestSimplePreimages(t *testing.T) {
	const m = 97
	f := MustNew(KindSimple, m, 3, 11).(Invertible)
	const M = 10000
	for i := 0; i < 3; i++ {
		for pos := uint64(0); pos < m; pos += 13 {
			pre := f.Preimages(i, pos, 0, M, nil)
			// Every reported preimage must actually map to pos.
			for _, y := range pre {
				if p := f.Positions(y, nil); p[i] != pos {
					t.Fatalf("h_%d(%d) = %d, want %d", i, y, p[i], pos)
				}
			}
			// Count must be exactly the number of x in [0,M) hitting pos.
			want := 0
			for x := uint64(0); x < M; x++ {
				if f.Positions(x, nil)[i] == pos {
					want++
				}
			}
			if len(pre) != want {
				t.Fatalf("h_%d pos=%d: %d preimages, want %d", i, pos, len(pre), want)
			}
		}
	}
}

func TestSimplePreimagesSubrange(t *testing.T) {
	const m = 50
	f := MustNew(KindSimple, m, 1, 5).(Invertible)
	full := f.Preimages(0, 7, 0, 1000, nil)
	sub := f.Preimages(0, 7, 300, 700, nil)
	for _, y := range sub {
		if y < 300 || y >= 700 {
			t.Fatalf("preimage %d outside [300,700)", y)
		}
	}
	// sub must be exactly the elements of full within the range.
	want := 0
	for _, y := range full {
		if y >= 300 && y < 700 {
			want++
		}
	}
	if len(sub) != want {
		t.Fatalf("subrange preimages = %d, want %d", len(sub), want)
	}
}

func TestSimplePreimagesEdgeCases(t *testing.T) {
	f := MustNew(KindSimple, 100, 2, 1).(Invertible)
	if got := f.Preimages(0, 200, 0, 1000, nil); got != nil {
		t.Fatalf("pos out of range returned %v", got)
	}
	if got := f.Preimages(5, 10, 0, 1000, nil); got != nil {
		t.Fatalf("bad function index returned %v", got)
	}
	if got := f.Preimages(0, 10, 500, 500, nil); got != nil {
		t.Fatalf("empty range returned %v", got)
	}
}

// Property: for random parameters, preimages of every function partition
// the namespace — each x appears in exactly the preimage set of h_i(x).
func TestQuickSimpleInversionConsistent(t *testing.T) {
	f := func(seed uint64, xs []uint32) bool {
		fam := MustNew(KindSimple, 1237, 3, seed).(Invertible)
		for _, x32 := range xs {
			x := uint64(x32) % 100000
			pos := fam.Positions(x, nil)
			for i := 0; i < 3; i++ {
				pre := fam.Preimages(i, pos[i], x, x+1, nil)
				if len(pre) != 1 || pre[0] != x {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestModInverse(t *testing.T) {
	cases := []struct {
		a, m uint64
		ok   bool
	}{
		{3, 10, true},
		{7, 97, true},
		{2, 10, false}, // gcd 2
		{5, 25, false}, // gcd 5
		{1, 7, true},
	}
	for _, c := range cases {
		inv, ok := modInverse(c.a, c.m)
		if ok != c.ok {
			t.Fatalf("modInverse(%d,%d) ok=%v, want %v", c.a, c.m, ok, c.ok)
		}
		if ok && mulMod(c.a, inv, c.m) != 1 {
			t.Fatalf("modInverse(%d,%d)=%d is not an inverse", c.a, c.m, inv)
		}
	}
}

func TestMulMod(t *testing.T) {
	// Exercise the 128-bit path with operands near 2^64.
	const m = 1<<61 - 1
	a := uint64(1<<60 + 12345)
	b := uint64(1<<59 + 6789)
	got := mulMod(a, b, m)
	// Verify via repeated squaring decomposition: compute with math/big-free
	// double-and-add.
	var want uint64
	x, y := a%m, b%m
	for y > 0 {
		if y&1 == 1 {
			want = (want + x) % m
		}
		x = (x + x) % m
		y >>= 1
	}
	if got != want {
		t.Fatalf("mulMod = %d, want %d", got, want)
	}
}

func TestGCD(t *testing.T) {
	if gcd(12, 18) != 6 || gcd(7, 13) != 1 || gcd(0, 5) != 5 || gcd(5, 0) != 5 {
		t.Fatal("gcd wrong")
	}
}

// Reference vectors for MurmurHash3 x64_128 with seed 0, as published in
// the smhasher repository and cross-checked against the spaolacci/murmur3
// Go implementation's test suite.
func TestMurmur3Vectors(t *testing.T) {
	cases := []struct {
		in     string
		h1, h2 uint64
	}{
		{"", 0x0, 0x0},
		{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.in), 0)
		if h1 != c.h1 || h2 != c.h2 {
			t.Fatalf("Sum128(%q) = %#x,%#x want %#x,%#x", c.in, h1, h2, c.h1, c.h2)
		}
	}
}

func TestMurmur3TailLengths(t *testing.T) {
	// Every tail length 0..15 (plus >16) must be deterministic and distinct
	// from its neighbours with overwhelming probability.
	seen := map[uint64]int{}
	for n := 0; n <= 33; n++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		h1, _ := Sum128(buf, 99)
		if prev, dup := seen[h1]; dup {
			t.Fatalf("len %d collides with len %d", n, prev)
		}
		seen[h1] = n
	}
}

func TestFNV1a64KnownValue(t *testing.T) {
	// FNV-1a of 8 zero bytes, computed from the reference algorithm.
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h *= fnvPrime
	}
	if got := fnv1a64(0); got != h {
		t.Fatalf("fnv1a64(0) = %#x, want %#x", got, h)
	}
}

func TestDoublePositionsCoversK(t *testing.T) {
	// Even with h2 ≡ 0 (forced to 1), positions must stay in range and be
	// k of them.
	out := doublePositions(5, 0, 7, 10, nil)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	for _, p := range out {
		if p >= 7 {
			t.Fatalf("position %d out of range", p)
		}
	}
}

func BenchmarkPositions(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			f := MustNew(kind, 60870, 3, 1)
			out := make([]uint64, 0, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = f.Positions(uint64(i), out[:0])
			}
			_ = out
		})
	}
}

func TestSimpleDistinctPrimeModuli(t *testing.T) {
	f := MustNew(KindSimple, 60870, 4, 3).(*simpleFamily)
	seen := map[uint64]bool{}
	for _, c := range f.c {
		if c > 60870 || !isPrime(c) {
			t.Fatalf("modulus %d not a prime <= m", c)
		}
		if seen[c] {
			t.Fatalf("duplicate modulus %d", c)
		}
		seen[c] = true
		if 60870-c > 1000 {
			t.Fatalf("modulus %d too far below m", c)
		}
	}
}

// Regression: with a single shared modulus, elements congruent mod m
// collide on every hash function simultaneously, giving an irreducible
// false-positive floor of ~n/m. With per-function prime moduli the
// congruence classes differ, so x and x+c_0 must NOT collide on all k
// functions.
func TestSimpleNoSimultaneousCongruenceCollisions(t *testing.T) {
	f := MustNew(KindSimple, 10000, 3, 9).(*simpleFamily)
	collisions := 0
	for x := uint64(0); x < 200; x++ {
		y := x + f.c[0] // same class mod c_0 → h_0 collides by design
		px := f.Positions(x, nil)
		py := f.Positions(y, nil)
		if px[0] != py[0] {
			t.Fatalf("h_0(%d) != h_0(%d) despite congruence mod c_0", x, y)
		}
		if px[1] == py[1] && px[2] == py[2] {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("%d/200 simultaneous collisions across distinct moduli", collisions)
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 97, 7919, 60859}
	composites := []uint64{0, 1, 4, 9, 100, 7917, 60861}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

func TestPrimesBelowTiny(t *testing.T) {
	ps := primesBelow(3, 3)
	if len(ps) != 3 {
		t.Fatalf("got %d primes", len(ps))
	}
	for _, p := range ps {
		if p > 3 || p < 2 {
			t.Fatalf("bad prime %d", p)
		}
	}
}
