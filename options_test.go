package bloomsample_test

import (
	"errors"
	"math/rand"
	"testing"

	bloomsample "repro"
)

func TestOptionsOpenWithBackend(t *testing.T) {
	db, err := bloomsample.Open(100_000,
		bloomsample.WithAccuracy(0.9),
		bloomsample.WithBackend(bloomsample.BackendCuckoo),
		bloomsample.WithSeed(11),
		bloomsample.WithPruned(true))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := db.Options().Backend; got != bloomsample.BackendCuckoo {
		t.Fatalf("Backend = %q, want cuckoo", got)
	}
	if !db.Options().Pruned {
		t.Fatal("WithPruned(true) not applied")
	}
	if db.Options().Seed != 11 {
		t.Fatalf("Seed = %d, want 11", db.Options().Seed)
	}

	if err := db.AddDynamic("d", 1, 2, 3); err != nil {
		t.Fatalf("AddDynamic: %v", err)
	}
	if err := db.RemoveDynamic("d", 2); err != nil {
		t.Fatalf("RemoveDynamic: %v", err)
	}
	if db.MembershipDynamic("d").Backend() != bloomsample.BackendCuckoo {
		t.Fatal("dynamic set not cuckoo-backed")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := db.SampleDynamic("d", rng, nil); err != nil && !errors.Is(err, bloomsample.ErrNoSample) {
		t.Fatalf("SampleDynamic: %v", err)
	}
	if st := db.Stats(); st.Backend.Kind != string(bloomsample.BackendCuckoo) {
		t.Fatalf("Stats().Backend.Kind = %q, want cuckoo", st.Backend.Kind)
	}
}

func TestOptionsConstructorsMatchDeprecated(t *testing.T) {
	plan, err := bloomsample.Plan(0.9, 500, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	oldTree, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)
	if err != nil {
		t.Fatal(err)
	}
	newTree, err := bloomsample.NewTreeWith(plan,
		bloomsample.WithHash(bloomsample.Murmur3), bloomsample.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	// Same parameters → filters from either tree are interchangeable.
	q := oldTree.NewQueryFilter()
	q.Add(123)
	q.Add(77)
	rng := rand.New(rand.NewSource(3))
	x, err := newTree.Sample(q, rng, nil)
	if err != nil && !errors.Is(err, bloomsample.ErrNoSample) {
		t.Fatalf("cross-constructor sample: %v", err)
	}
	if err == nil && x != 123 && x != 77 {
		// Tree sampling can return false positives, but with these
		// parameters a wrong member is overwhelmingly unlikely.
		t.Fatalf("sample = %d, want a member of {123, 77}", x)
	}

	oldF, err := bloomsample.NewFilter(bloomsample.Fast, 1<<12, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	newF, err := bloomsample.NewFilterWith(1<<12, 3, bloomsample.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	oldF.Add(5)
	newF.Add(5)
	if !oldF.Equal(newF) {
		t.Fatal("deprecated NewFilter and NewFilterWith disagree on identical parameters")
	}
}

func TestDynamicMembershipFacade(t *testing.T) {
	for _, kind := range []bloomsample.BackendKind{bloomsample.BackendCounting, bloomsample.BackendCuckoo} {
		m, err := bloomsample.NewDynamicMembership(1<<12, 3,
			bloomsample.WithBackend(kind), bloomsample.WithSeed(5))
		if err != nil {
			t.Fatalf("%s: NewDynamicMembership: %v", kind, err)
		}
		m2 := m.CloneAddDynamic(8, 16)
		m3, err := m2.CloneRemove(8)
		if err != nil {
			t.Fatalf("%s: CloneRemove: %v", kind, err)
		}
		if m3.Contains(8) || !m3.Contains(16) {
			t.Fatalf("%s: membership wrong after remove", kind)
		}
		data, err := m3.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", kind, err)
		}
		back, err := bloomsample.UnmarshalMembership(data)
		if err != nil {
			t.Fatalf("%s: UnmarshalMembership: %v", kind, err)
		}
		if back.Backend() != kind || !back.Contains(16) {
			t.Fatalf("%s: round-trip lost state", kind)
		}
		if _, err := m2.CloneRemove(999); !errors.Is(err, bloomsample.ErrNotMember) {
			t.Fatalf("%s: remove of non-member = %v, want ErrNotMember", kind, err)
		}
	}
}
