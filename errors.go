package bloomsample

import (
	"repro/internal/bloom"
	"repro/internal/setdb"
)

// Error taxonomy. Every sentinel an operation can wrap is re-exported
// here so callers never import internal packages to errors.Is against
// them. The served layers map the same sentinels onto response codes —
// one taxonomy across the library, HTTP/JSON and the binary wire
// protocol (whose OpError code field reuses the HTTP status numbers):
//
//	ErrNoSet                            → 404 Not Found
//	ErrKeyClash, ErrNotMember,
//	ErrSamplerInvalid                   → 409 Conflict
//	ErrOutOfRange                       → 400 Bad Request
//	anything else                       → 500 Internal Server Error
//
// ErrNoSample and ErrIncompatible never cross the server boundary:
// ErrNoSample is a per-draw outcome the batch endpoints simply skip,
// and incompatible filters cannot be constructed through a database.
var (
	// ErrNoSet is wrapped by the error every SetDB query or removal
	// returns for an absent key.
	ErrNoSet = setdb.ErrNoSet

	// ErrKeyClash is wrapped by SetDB writes when the key already exists
	// with the other storage kind (a key is either plain or dynamic,
	// never both).
	ErrKeyClash = setdb.ErrKeyClash

	// ErrOutOfRange is wrapped by SetDB writes carrying an id outside
	// the database namespace — a caller mistake, not an internal
	// failure.
	ErrOutOfRange = setdb.ErrOutOfRange

	// ErrSamplerInvalid is returned by a SetDBSampler whose set was
	// deleted or replaced; obtain a fresh sampler.
	ErrSamplerInvalid = setdb.ErrSamplerInvalid

	// ErrNotMember is wrapped by dynamic removals of an id that is not
	// currently a member; the set is left unchanged (removals are
	// all-or-nothing).
	ErrNotMember = bloom.ErrNotMember

	// ErrIncompatible is returned by filter compositions (union,
	// intersection, estimators) over filters with different parameters.
	ErrIncompatible = bloom.ErrIncompatible
)
